"""Scaling benchmark: dense ``csr`` vs true-sparse ``sparse_csr`` storage.

For a grid of block counts, times the two vectorized hot paths — the
batched merge-proposal phase and the batch-Gibbs MCMC sweep — and records
each backend's peak traced allocation (``tracemalloc``), demonstrating the
dense backend's O(B²) memory growth against the sparse backend's
O(nnz + B).  A final sparse-only row runs the merge phase at a block count
**beyond** ``MAX_DENSE_BLOCKS``, the regime the dense backend cannot enter
at all.

Results land in ``results/sparse_backend_scaling.{csv,json}``.  In smoke
mode (``REPRO_BENCH_MODE=smoke``, used by CI) the grid shrinks to one block
count plus the beyond-limit row so the sparse path is exercised on every
push without hours of runtime.
"""

import time
import tracemalloc

import numpy as np
from bench_utils import run_once

from repro.blockmodel.blockmodel import Blockmodel
from repro.blockmodel.csr_matrix import MAX_DENSE_BLOCKS
from repro.core.config import SBPConfig
from repro.core.hybrid_mcmc import batch_gibbs_sweep
from repro.core.merges import block_merge_phase
from repro.graphs.generators.degree import DegreeSequenceSpec
from repro.graphs.generators.sbm import DCSBMSpec, generate_dcsbm_graph
from repro.graphs.graph import Graph

NUM_VERTICES = 4096
BLOCK_COUNTS = (256, 1024, 4096)
SMOKE_BLOCK_COUNTS = (512,)
#: Block count of the sparse-only row (beyond the dense backend's ceiling).
BEYOND_LIMIT_BLOCKS = MAX_DENSE_BLOCKS + 232


def _bench_graph() -> Graph:
    spec = DCSBMSpec(
        num_vertices=NUM_VERTICES,
        num_communities=8,
        degree_spec=DegreeSequenceSpec(exponent=3.0, min_degree=5, max_degree=40, duplicate=True),
        intra_inter_ratio=3.0,
        block_size_alpha=5.0,
        name="sparse-scaling-4k",
    )
    return generate_dcsbm_graph(spec, seed=11)


def _ring_graph(num_vertices: int) -> Graph:
    edges = [(v, (v + 1) % num_vertices) for v in range(num_vertices)]
    return Graph.from_edges(num_vertices, edges, name=f"ring-{num_vertices}")


def _measure(graph: Graph, num_blocks: int, backend: str, config: SBPConfig) -> dict:
    """Merge-phase and sweep seconds plus peak traced bytes for one backend."""
    vertices = np.arange(graph.num_vertices)
    num_merges = max(num_blocks // 4, 1)
    tracemalloc.start()
    try:
        blockmodel = Blockmodel.from_graph(graph, num_blocks=num_blocks, matrix_backend=backend)
        start = time.perf_counter()
        block_merge_phase(blockmodel, num_merges, config, np.random.default_rng(7))
        merge_seconds = time.perf_counter() - start
        start = time.perf_counter()
        batch_gibbs_sweep(blockmodel, vertices, config, np.random.default_rng(7))
        sweep_seconds = time.perf_counter() - start
        _, peak = tracemalloc.get_traced_memory()
    finally:
        tracemalloc.stop()
    return {
        "merge_seconds": merge_seconds,
        "sweep_seconds": sweep_seconds,
        "peak_mb": peak / 1e6,
    }


def run_sparse_backend_scaling(settings) -> list:
    config = SBPConfig.fast(seed=0).with_overrides(mcmc_variant="batch_gibbs")
    block_counts = SMOKE_BLOCK_COUNTS if settings.mode == "smoke" else BLOCK_COUNTS
    graph = _bench_graph()
    rows = []
    for num_blocks in block_counts:
        dense = _measure(graph, num_blocks, "csr", config)
        sparse = _measure(graph, num_blocks, "sparse_csr", config)
        rows.append(
            {
                "num_vertices": graph.num_vertices,
                "num_blocks": num_blocks,
                "csr_merge_ms": round(dense["merge_seconds"] * 1000, 2),
                "sparse_merge_ms": round(sparse["merge_seconds"] * 1000, 2),
                "csr_sweep_ms": round(dense["sweep_seconds"] * 1000, 2),
                "sparse_sweep_ms": round(sparse["sweep_seconds"] * 1000, 2),
                "csr_peak_mb": round(dense["peak_mb"], 2),
                "sparse_peak_mb": round(sparse["peak_mb"], 2),
            }
        )
    # The regime the dense backend cannot enter: B > MAX_DENSE_BLOCKS.
    big = _ring_graph(BEYOND_LIMIT_BLOCKS)
    beyond = _measure(big, BEYOND_LIMIT_BLOCKS, "sparse_csr", config)
    rows.append(
        {
            "num_vertices": big.num_vertices,
            "num_blocks": BEYOND_LIMIT_BLOCKS,
            "csr_merge_ms": None,  # dense backend rejects this block count
            "sparse_merge_ms": round(beyond["merge_seconds"] * 1000, 2),
            "csr_sweep_ms": None,
            "sparse_sweep_ms": round(beyond["sweep_seconds"] * 1000, 2),
            "csr_peak_mb": None,
            "sparse_peak_mb": round(beyond["peak_mb"], 2),
        }
    )
    return rows


def test_sparse_backend_scaling(benchmark, report, settings):
    rows = run_once(benchmark, run_sparse_backend_scaling, settings)
    report(
        rows,
        "sparse_backend_scaling",
        "sparse_csr vs csr: merge/sweep throughput and peak memory vs block count",
    )
    assert rows, "no measurements recorded"
    beyond = rows[-1]
    assert beyond["num_blocks"] > MAX_DENSE_BLOCKS
    assert beyond["sparse_merge_ms"] is not None and beyond["sparse_merge_ms"] > 0
    # The sparse backend's memory must stay far below a dense B×B allocation
    # (int64 at the beyond-limit block count would be ~8.7 GB).
    dense_equivalent_mb = BEYOND_LIMIT_BLOCKS * BEYOND_LIMIT_BLOCKS * 8 / 1e6
    assert beyond["sparse_peak_mb"] < dense_equivalent_mb / 8
    # At dense-representable block counts, the sparse backend must not pay
    # the dense quadratic memory bill: compare the largest measured grid B.
    largest = rows[-2]
    assert largest["sparse_peak_mb"] <= largest["csr_peak_mb"] * 2, (
        "sparse backend peak memory should not exceed the dense backend's "
        f"by 2x at B={largest['num_blocks']}: {largest}"
    )
