"""Table VIII — EDiSt NMI across rank counts on the parameter-sweep graphs.

The paper's claim: EDiSt keeps the single-node (baseline) NMI at every rank
count, on both the dense and the sparse graphs — the two situations where
DC-SBP collapses (Table VII).
"""

from bench_utils import run_once

from repro.harness.experiments import run_table7, run_table8


def test_table8_edist_accuracy_grid(benchmark, settings, report):
    rows = run_once(benchmark, run_table8, settings)
    report(rows, "table8_edist_parameter_sweep",
           "Table VIII: EDiSt NMI across rank counts (paper baseline NMI shown for reference)")
    assert len(rows) == len(settings.sweep_graph_ids)

    max_ranks = max(settings.rank_counts)
    for row in rows:
        baseline = row["nmi@1"]
        at_scale = row[f"nmi@{max_ranks}"]
        # EDiSt retains the single-rank accuracy at the largest rank count
        # (allowing MCMC noise); this is the paper's central claim.
        assert at_scale >= baseline - 0.15, f"{row['graph']}: {at_scale} vs baseline {baseline}"


def test_edist_beats_dcsbp_at_scale(benchmark, settings, report):
    """Cross-table check: at the largest rank count EDiSt ≥ DC-SBP in NMI."""

    def _both():
        return run_table7(settings), run_table8(settings)

    table7, table8 = run_once(benchmark, _both)
    max_ranks = max(settings.rank_counts)
    dcsbp = {r["graph"]: r[f"nmi@{max_ranks}"] for r in table7}
    edist = {r["graph"]: r[f"nmi@{max_ranks}"] for r in table8}
    comparison = [
        {"graph": g, "dcsbp_nmi": dcsbp[g], "edist_nmi": edist[g], "num_ranks": max_ranks}
        for g in dcsbp
    ]
    report(comparison, "table7_vs_table8_at_max_ranks",
           f"EDiSt vs DC-SBP NMI at {max_ranks} ranks (Tables VII vs VIII)")
    for row in comparison:
        assert row["edist_nmi"] >= row["dcsbp_nmi"] - 0.05
    # And EDiSt must be strictly better on at least one graph where DC-SBP collapsed.
    assert any(row["edist_nmi"] > row["dcsbp_nmi"] + 0.2 for row in comparison)
