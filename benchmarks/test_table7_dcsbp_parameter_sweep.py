"""Table VII — DC-SBP NMI across rank counts on the parameter-sweep graphs.

The paper's headline observations, which must reproduce in shape:

* DC-SBP holds the single-node NMI at small rank counts on the dense
  (minimum-degree-truncated) graphs;
* its accuracy collapses as the rank count grows (the paper sees the cliff
  at ≥16 ranks at full graph scale; at the reduced benchmark scale the
  per-subgraph vertex count shrinks proportionally, so the cliff appears at
  smaller rank counts);
* on the sparse (minimum-degree-1) graphs the collapse happens almost
  immediately, because the round-robin distribution strands a large fraction
  of vertices as islands.
"""

from bench_utils import run_once

from repro.harness.experiments import run_table7


def test_table7_dcsbp_accuracy_grid(benchmark, settings, report):
    rows = run_once(benchmark, run_table7, settings)
    report(rows, "table7_dcsbp_parameter_sweep",
           "Table VII: DC-SBP NMI across rank counts (paper baseline NMI shown for reference)")
    assert len(rows) == len(settings.sweep_graph_ids)

    max_ranks = max(settings.rank_counts)
    min_ranks = min(r for r in settings.rank_counts)
    for row in rows:
        # Accuracy at the largest rank count must not exceed the small-rank
        # accuracy by a margin: DC-SBP never *improves* with fragmentation.
        assert row[f"nmi@{max_ranks}"] <= row[f"nmi@{min_ranks}"] + 0.1

    dense_rows = [r for r in rows if r["graph"].startswith("T")]
    if dense_rows and max_ranks >= 8:
        # On dense graphs the collapse at the largest rank count is severe
        # (paper: NMI 0.0 at 32-64 ranks).
        assert min(r[f"nmi@{max_ranks}"] for r in dense_rows) < 0.5
